//! Strategies and the deterministic generator behind them.

/// Deterministic pseudo-random generator (SplitMix64 core) seeding each
/// property from its test name, so failures reproduce run-to-run.
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seed from a test name (stable FNV-1a hash).
    pub fn from_name(name: &str) -> Gen {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Gen { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `usize` in a half-open range (empty range yields `start`).
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        range.start + self.below(range.end - range.start)
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, gen: &mut Gen) -> Self::Value {
        (**self).generate(gen)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (gen.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                start + (gen.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                ($(self.$n.generate(gen),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// `&str` patterns are regex strategies: the pattern is parsed (per the
/// subset documented in the crate docs) and strings are sampled from it.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, gen: &mut Gen) -> String {
        let ast = regex::parse(self);
        let mut out = String::new();
        regex::render(&ast, gen, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, gen: &mut Gen) -> String {
        self.as_str().generate(gen)
    }
}

/// Generation-oriented regex subset.
mod regex {
    use super::Gen;

    /// One parsed regex node.
    pub enum Node {
        /// Literal character.
        Literal(char),
        /// `.` — any printable char (ASCII-weighted with occasional
        /// non-ASCII to probe UTF-8 handling).
        AnyChar,
        /// Character class: the set of allowed chars, pre-expanded.
        Class(Vec<char>),
        /// Alternation of sequences: `(a|bc|...)`.
        Alternation(Vec<Vec<Node>>),
        /// `node{min,max}` repetition.
        Repeat(Box<Node>, usize, usize),
    }

    /// Parse `pattern` into a sequence of nodes. Panics on constructs
    /// outside the subset — a property author error, surfaced loudly.
    pub fn parse(pattern: &str) -> Vec<Node> {
        let chars: Vec<char> = pattern.chars().collect();
        let (nodes, consumed) = parse_sequence(&chars, 0, None);
        assert_eq!(
            consumed,
            chars.len(),
            "unsupported regex construct in pattern `{pattern}`"
        );
        nodes
    }

    /// Parse until end-of-input or the given terminator, returning the
    /// nodes and the index reached (terminator not consumed).
    fn parse_sequence(chars: &[char], mut i: usize, until: Option<char>) -> (Vec<Node>, usize) {
        let mut nodes = Vec::new();
        while i < chars.len() {
            let c = chars[i];
            if Some(c) == until || c == '|' {
                break;
            }
            let node = match c {
                '.' => {
                    i += 1;
                    Node::AnyChar
                }
                '\\' => {
                    i += 1;
                    let escaped = chars.get(i).copied().unwrap_or('\\');
                    i += 1;
                    Node::Literal(unescape(escaped))
                }
                '[' => {
                    let (set, next) = parse_class(chars, i + 1);
                    i = next;
                    Node::Class(set)
                }
                '(' => {
                    let mut alternatives = Vec::new();
                    i += 1;
                    loop {
                        let (alt, next) = parse_sequence(chars, i, Some(')'));
                        alternatives.push(alt);
                        i = next;
                        match chars.get(i) {
                            Some('|') => i += 1,
                            Some(')') => {
                                i += 1;
                                break;
                            }
                            _ => panic!("unterminated group in regex"),
                        }
                    }
                    Node::Alternation(alternatives)
                }
                other => {
                    i += 1;
                    Node::Literal(other)
                }
            };
            // Repetition suffix?
            let node = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .expect("unterminated {} in regex");
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad repeat min"),
                            hi.parse().expect("bad repeat max"),
                        ),
                        None => {
                            let n = spec.parse().expect("bad repeat count");
                            (n, n)
                        }
                    };
                    Node::Repeat(Box::new(node), min, max)
                }
                Some('?') => {
                    i += 1;
                    Node::Repeat(Box::new(node), 0, 1)
                }
                Some('*') => {
                    i += 1;
                    Node::Repeat(Box::new(node), 0, 8)
                }
                Some('+') => {
                    i += 1;
                    Node::Repeat(Box::new(node), 1, 8)
                }
                _ => node,
            };
            nodes.push(node);
        }
        (nodes, i)
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    /// Parse a class body after `[`, returning the allowed set and the
    /// index after the closing `]`. Supports ranges, escapes, leading `^`
    /// negation, and `&&[^...]` subtraction.
    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let negated = chars.get(i) == Some(&'^');
        if negated {
            i += 1;
        }
        let mut set: Vec<char> = Vec::new();
        let mut subtract: Vec<char> = Vec::new();
        while i < chars.len() {
            match chars[i] {
                ']' => {
                    i += 1;
                    let universe = printable_ascii();
                    let mut result: Vec<char> = if negated {
                        universe.into_iter().filter(|c| !set.contains(c)).collect()
                    } else {
                        set
                    };
                    result.retain(|c| !subtract.contains(c));
                    assert!(!result.is_empty(), "empty character class in regex");
                    return (result, i);
                }
                '&' if chars.get(i + 1) == Some(&'&') => {
                    // `&&[^...]` — subtraction of the nested class.
                    assert_eq!(chars.get(i + 2), Some(&'['), "unsupported && in class");
                    assert_eq!(chars.get(i + 3), Some(&'^'), "unsupported && in class");
                    let (sub, next) = parse_class_set(chars, i + 4);
                    subtract = sub;
                    i = next; // positioned after the inner `]`
                }
                _ => {
                    let (items, next) = parse_class_item(chars, i);
                    set.extend(items);
                    i = next;
                }
            }
        }
        panic!("unterminated character class in regex");
    }

    /// Plain class body (no negation/subtraction), after `[`/`[^`.
    fn parse_class_set(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() {
            if chars[i] == ']' {
                return (set, i + 1);
            }
            let (items, next) = parse_class_item(chars, i);
            set.extend(items);
            i = next;
        }
        panic!("unterminated character class in regex");
    }

    /// One class atom: a literal, an escape, or a `a-z` range.
    fn parse_class_item(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let lo = if chars[i] == '\\' {
            i += 1;
            let c = unescape(chars[i]);
            i += 1;
            c
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        // Range? (`-` not last-in-class)
        if chars.get(i) == Some(&'-') && chars.get(i + 1).map_or(false, |&c| c != ']') {
            i += 1;
            let hi = if chars[i] == '\\' {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                c
            } else {
                let c = chars[i];
                i += 1;
                c
            };
            let (lo, hi) = (lo as u32, hi as u32);
            assert!(lo <= hi, "inverted range in character class");
            let items = (lo..=hi).filter_map(char::from_u32).collect();
            (items, i)
        } else {
            (vec![lo], i)
        }
    }

    fn printable_ascii() -> Vec<char> {
        (0x20u8..0x7f).map(|b| b as char).collect()
    }

    /// Sample a string from parsed nodes.
    pub fn render(nodes: &[Node], gen: &mut Gen, out: &mut String) {
        for node in nodes {
            render_node(node, gen, out);
        }
    }

    fn render_node(node: &Node, gen: &mut Gen, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::AnyChar => {
                // Mostly printable ASCII; occasionally a multibyte char or
                // control to probe robustness paths.
                match gen.below(20) {
                    0 => out.push(['é', 'ß', '中', '😀', '\t'][gen.below(5)]),
                    _ => out.push((0x20u8 + gen.below(0x5f) as u8) as char),
                }
            }
            Node::Class(set) => out.push(set[gen.below(set.len())]),
            Node::Alternation(alts) => {
                let pick = &alts[gen.below(alts.len())];
                render(pick, gen, out);
            }
            Node::Repeat(inner, min, max) => {
                let n = *min + gen.below(max - min + 1);
                for _ in 0..n {
                    render_node(inner, gen, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &str, n: usize) -> Vec<String> {
        let mut gen = Gen::from_name(pattern);
        (0..n).map(|_| pattern.generate(&mut gen)).collect()
    }

    #[test]
    fn literal_and_repeat() {
        for s in sample("ab{2,4}c", 50) {
            assert!(s.starts_with('a') && s.ends_with('c'));
            let bs = s.len() - 2;
            assert!((2..=4).contains(&bs), "{s}");
            assert!(s[1..s.len() - 1].chars().all(|c| c == 'b'));
        }
    }

    #[test]
    fn class_ranges() {
        for s in sample("[a-c0-2]{1,8}", 100) {
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s.chars().all(|c| "abc012".contains(c)), "{s}");
        }
    }

    #[test]
    fn class_subtraction() {
        for s in sample("[ -~&&[^\"\\\\]]{0,40}", 100) {
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn alternation_with_nested_atoms() {
        for s in sample("(<[a-z]{1,3}>|-->|x)", 100) {
            let ok = s == "-->"
                || s == "x"
                || (s.starts_with('<')
                    && s.ends_with('>')
                    && (2..=5).contains(&s.len())
                    && s[1..s.len() - 1].chars().all(|c| c.is_ascii_lowercase()));
            assert!(ok, "{s:?}");
        }
    }

    #[test]
    fn escaped_dot_is_literal() {
        for s in sample("[a-z]{1,4}\\.(com|org)", 100) {
            assert!(s.contains('.'), "{s}");
            assert!(s.ends_with(".com") || s.ends_with(".org"), "{s}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(sample(".{0,30}", 10), sample(".{0,30}", 10));
    }

    #[test]
    fn tuple_and_range_strategies() {
        let mut gen = Gen::from_name("t");
        for _ in 0..100 {
            let (n, s) = (1usize..5, "[ab]{1,2}").generate(&mut gen);
            assert!((1..5).contains(&n));
            assert!(!s.is_empty());
        }
    }
}
