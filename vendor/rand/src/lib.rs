//! Offline stand-in for `rand` 0.8, covering the trait surface this
//! workspace uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`choose`, `shuffle`).
//!
//! Algorithms follow rand 0.8's semantics: `seed_from_u64` expands the
//! state with SplitMix64, uniform integer ranges use multiply-shift with
//! rejection, floats use the 53-bit mantissa construction. Streams are
//! fully deterministic functions of the seed.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// scheme rand_core 0.6 uses, so streams keyed by small integers are
    /// well distributed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Values producible from uniform bits (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges drawable by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type.
    type Output;
    /// Draw a uniform value from the range. Panics on an empty range,
    /// matching rand.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by widening multiply with rejection
/// (Lemire), unbiased.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // # of low values to reject
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level drawing methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample(self) < p
    }

    /// `true` with probability `numerator/denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_u64(self, denominator as u64) < numerator as u64
    }

    /// Fill a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Up to `amount` distinct elements, in selection order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_u64(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.as_mut_slice().shuffle(rng);
            indices.truncate(amount.min(self.len()));
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step — decent avalanche for test purposes.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_none_on_empty() {
        use seq::SliceRandom;
        let mut rng = Counter(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
