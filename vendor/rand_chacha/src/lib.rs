//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`] and [`ChaCha20Rng`]
//! implemented from the ChaCha block function (RFC 8439 layout, 64-bit
//! block counter). Keystream quality and determinism match the real
//! cipher; note the word stream is not guaranteed bit-identical to the
//! upstream crate's (only self-consistency is promised, which is what the
//! workspace's determinism contract requires).

use rand::{RngCore, SeedableRng};

/// `rand_core` trait re-exports, mirroring the upstream crate layout
/// (`rand_chacha::rand_core::SeedableRng`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Generic ChaCha keystream generator over `R` double-rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..13).
    counter: u64,
    /// Nonce words (state words 14..16); zero for seeded streams.
    nonce: [u32; 2],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 forces a refill.
    word_pos: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];

        let mut working = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaChaRng {
            key,
            counter: 0,
            nonce: [0; 2],
            block: [0; 16],
            word_pos: 16,
        }
    }
}

/// ChaCha with 8 rounds (4 double-rounds): the fast statistical generator.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds: the full-strength variant.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chacha20_rfc8439_block_one() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, 96-bit nonce
        // 000000090000004a00000000, 32-bit counter 1. The RFC's
        // counter/nonce words map onto our 64-bit-counter layout as
        // state[12..14] = counter, state[14..16] = nonce.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rng = ChaCha20Rng::from_seed(key);
        rng.counter = (0x0900_0000u64 << 32) | 1;
        rng.nonce = [0x4a00_0000, 0];
        rng.refill();
        assert_eq!(rng.block[0], 0xe4e7_f110);
        assert_eq!(rng.block[1], 0x1559_3bd1);
        assert_eq!(rng.block[15], 0x4e3c_50a2);
    }

    #[test]
    fn float_draws_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
