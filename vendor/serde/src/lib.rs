//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses.
//!
//! The real serde could not be vendored (the build environment has no
//! registry access), so this crate supplies the same surface — the
//! `Serialize`/`Deserialize` traits and their derive macros — backed by a
//! JSON-shaped [`Value`] tree instead of serde's visitor machinery. The
//! companion `serde_json` stand-in renders and parses that tree.
//!
//! Determinism note: struct fields serialize in declaration order and map
//! serialization sorts keys, so serialized output is byte-stable across
//! runs regardless of hash-map iteration order.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number: integers are kept exact, floats as `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }

    /// Value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(u) => Some(u as f64),
            Number::I(i) => Some(i as f64),
            Number::F(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON value tree. Objects preserve insertion order (deterministic
/// serialization) and are looked up linearly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup that reports a typed error when absent —
    /// the shape derive-generated `Deserialize` impls rely on.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::new(format!("missing field `{key}`")))
    }

    /// Render as compact JSON.
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out);
        f.write_str(&out)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U(v as u64))
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize);

macro_rules! value_from_sint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v < 0 {
                    Value::Number(Number::I(v as i64))
                } else {
                    Value::Number(Number::U(v as u64))
                }
            }
        }
    )*};
}
value_from_sint!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Serialization/deserialization error: a message, optionally with position
/// context supplied by the JSON parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Construct an error with the given message.
    pub fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
///
/// The derive macro generates field-by-field implementations; the impls
/// below cover std types.
pub trait Serialize {
    /// Convert to a JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a JSON value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- std impls: scalars ----

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
serde_sint!(i8, i16, i32, i64, isize);

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

// ---- std impls: composites ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! serde_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                Ok(($($t::from_value(
                    items.get($n).ok_or_else(|| Error::new("tuple too short"))?
                )?,)+))
            }
        }
    )+};
}
serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys usable as JSON object keys.
pub trait JsonKey: Sized + Ord {
    /// Render the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parse the key back from an object-key string.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::new("invalid integer object key"))
            }
        }
    )*};
}
json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(members) => members
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::new("expected object")),
        }
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so hash-map serialization is deterministic.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(members) => members
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::new("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::from(1u64)),
            (
                "b".into(),
                Value::Array(vec![Value::from("x"), Value::Null]),
            ),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":["x",null]}"#);
    }

    #[test]
    fn string_escapes() {
        let v = Value::from("a\"b\\c\nd");
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert(3u32, 1.0f64);
        m.insert(1u32, 2.0f64);
        m.insert(2u32, 3.0f64);
        assert_eq!(m.to_value().to_string(), r#"{"1":2.0,"2":3.0,"3":1.0}"#);
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Value::from(1.0f64).to_string(), "1.0");
        assert_eq!(Value::from(0.5f64).to_string(), "0.5");
    }
}
