//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` available
//! offline) and emits `impl serde::Serialize` / `impl serde::Deserialize`
//! blocks that build or walk the `serde::Value` tree.
//!
//! Supported shapes — the full set used by this workspace:
//! - structs with named fields
//! - tuple structs (newtype and n-tuple)
//! - unit structs
//! - enums with unit, tuple, and struct variants (serde's external tagging)
//!
//! Generics and `#[serde(...)]` attributes are intentionally not supported;
//! deriving on such an item is a compile error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field list of one struct or enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { fields, .. } => serialize_fields_expr(fields, "self.", true),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&serialize_variant_arm(name, v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    let name = item_name(&item);
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct_expr(name, fields, "__v"),
        Item::Enum { name, variants } => deserialize_enum_expr(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> core::result::Result<Self, serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---- code generation ----

/// Expression building a `serde::Value` from fields reached via `prefix`
/// (`self.` for structs, `` for bound match variables). `self_access`
/// selects tuple-field syntax (`self.0`) over bound names (`__f0`).
fn serialize_fields_expr(fields: &Fields, prefix: &str, self_access: bool) -> String {
    match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let mut members = String::new();
            for n in names {
                members.push_str(&format!(
                    "(String::from(\"{n}\"), serde::Serialize::to_value(&{prefix}{n})),"
                ));
            }
            format!("serde::Value::Object(vec![{members}])")
        }
        Fields::Tuple(1) => {
            let access = if self_access {
                format!("{prefix}0")
            } else {
                "__f0".to_string()
            };
            format!("serde::Serialize::to_value(&{access})")
        }
        Fields::Tuple(n) => {
            let mut items = String::new();
            for i in 0..*n {
                let access = if self_access {
                    format!("{prefix}{i}")
                } else {
                    format!("__f{i}")
                };
                items.push_str(&format!("serde::Serialize::to_value(&{access}),"));
            }
            format!("serde::Value::Array(vec![{items}])")
        }
    }
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => {
            format!("{enum_name}::{vname} => serde::Value::String(String::from(\"{vname}\")),")
        }
        Fields::Named(names) => {
            let binds = names.join(", ");
            let inner = serialize_fields_expr(&v.fields, "", false);
            format!(
                "{enum_name}::{vname} {{ {binds} }} => serde::Value::Object(vec![\
                     (String::from(\"{vname}\"), {inner})]),"
            )
        }
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let inner = serialize_fields_expr(&v.fields, "", false);
            format!(
                "{enum_name}::{vname}({}) => serde::Value::Object(vec![\
                     (String::from(\"{vname}\"), {inner})]),",
                binds.join(", ")
            )
        }
    }
}

/// Expression of type `Result<Self, serde::Error>` reconstructing
/// `type_path` from the `serde::Value` named by `src`.
fn deserialize_struct_expr(type_path: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => format!("Ok({type_path})"),
        Fields::Named(names) => {
            let mut inits = String::new();
            for n in names {
                inits.push_str(&format!(
                    "{n}: serde::Deserialize::from_value({src}.field(\"{n}\")?)?,"
                ));
            }
            format!("Ok({type_path} {{ {inits} }})")
        }
        Fields::Tuple(1) => {
            format!("Ok({type_path}(serde::Deserialize::from_value({src})?))")
        }
        Fields::Tuple(n) => {
            let mut items = String::new();
            for i in 0..*n {
                items.push_str(&format!(
                    "serde::Deserialize::from_value(__items.get({i})\
                         .ok_or_else(|| serde::Error::new(\"tuple too short\"))?)?,"
                ));
            }
            format!(
                "{{ let __items = {src}.as_array()\
                     .ok_or_else(|| serde::Error::new(\"expected array\"))?;\
                   Ok({type_path}({items})) }}"
            )
        }
    }
}

fn deserialize_enum_expr(enum_name: &str, variants: &Vec<Variant>) -> String {
    // Unit variants arrive as plain strings; data variants as single-key
    // objects (serde's externally-tagged representation).
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!("\"{vname}\" => Ok({enum_name}::{vname}),"));
            }
            _ => {
                let inner =
                    deserialize_struct_expr(&format!("{enum_name}::{vname}"), &v.fields, "__inner");
                data_arms.push_str(&format!("\"{vname}\" => {{ {inner} }},"));
            }
        }
    }
    format!(
        "match __v {{\n\
             serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 _ => Err(serde::Error::new(format!(\"unknown variant `{{}}` of {enum_name}\", __s))),\n\
             }},\n\
             serde::Value::Object(__members) if __members.len() == 1 => {{\n\
                 let (__tag, __inner) = &__members[0];\n\
                 match __tag.as_str() {{\n\
                     {data_arms}\n\
                     _ => Err(serde::Error::new(format!(\"unknown variant `{{}}` of {enum_name}\", __tag))),\n\
                 }}\n\
             }},\n\
             _ => Err(serde::Error::new(\"expected enum representation\")),\n\
         }}"
    )
}

// ---- token-stream parsing ----

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline stand-in): generic types are not supported");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advance past `#[...]` attributes (including doc comments) and any
/// visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => break,
        }
    }
}

/// Names of the fields in a brace-delimited field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        names.push(name);
        pos += 1;
        // Skip `: Type` up to the next top-level comma. Generic angle
        // brackets may nest commas, so track `<`/`>` depth; shifts (`>>`)
        // arrive as separate '>' puncts in the token stream.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    names
}

/// Number of fields in a parenthesized tuple field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            // A trailing comma does not introduce a field.
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && i + 1 < tokens.len() => {
                count += 1
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
