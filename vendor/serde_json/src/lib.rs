//! Offline stand-in for `serde_json`.
//!
//! Re-exports the JSON [`Value`] tree from the `serde` stand-in and adds the
//! string-level entry points this workspace uses: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. Output is deterministic: struct
//! fields render in declaration order, hash maps sort their keys.

pub use serde::{Error, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serialize `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
fn parse_value(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("empty string tail"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits following `\u`; surrogate pairs are combined.
    fn unicode_escape(&mut self) -> Result<char> {
        let code = self.hex4()?;
        if (0xd800..0xdc00).contains(&code) {
            // High surrogate: require `\uXXXX` low surrogate next.
            if self.eat_literal("\\u") {
                let low = self.hex4()?;
                if (0xdc00..0xe000).contains(&low) {
                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| Error::new("bad surrogate pair"));
                }
            }
            return Err(Error::new("lone high surrogate"));
        }
        char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("non-hex digit in \\u escape"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "42", "-7", "0.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let json = r#"{"a":[1,2,{"b":"x\ny"}],"c":null}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1f600}");
    }

    #[test]
    fn typed_roundtrip() {
        let rows: Vec<(usize, String)> = vec![(1, "a".into()), (2, "b\"c".into())];
        let json = to_string(&rows).unwrap();
        let back: Vec<(usize, String)> = from_str(&json).unwrap();
        assert_eq!(back, rows);
    }
}
